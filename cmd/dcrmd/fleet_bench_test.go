package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fleet"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// BenchmarkFleetCampaign measures campaign wall-clock against fleet size:
// one coordinator, N in-process workers, each worker's suite pinned to a
// single campaign goroutine so a worker models one host (or one core).
// Wall-clock therefore scales with min(N, GOMAXPROCS): on a multi-core
// host the workers=3 case approaches 3× the workers=1 throughput, while on
// a single-core host the two are equal — the fabric adds coordination, not
// cores. scripts/bench.sh records both cases in BENCH_fleet.json and
// scripts/bench_compare.sh reports the ratio (warn-only).
func BenchmarkFleetCampaign(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) { benchFleet(b, n) })
	}
}

func benchFleet(b *testing.B, nWorkers int) {
	reg := telemetry.NewRegistry()
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		HeartbeatEvery: 50 * time.Millisecond,
		ValidateSpec:   experiments.ValidateSpec,
	})
	r := newRunner(experiments.SuiteConfig{NNTrainSamples: 60}, reg, 64)
	srv := httptest.NewServer(newMux(r, coord, reg, false))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < nWorkers; i++ {
		// Workers: GOMAXPROCS makes the nested campaign parallelism exactly
		// one goroutine per shard (see Suite.campaignWorkers), so fleet size
		// is the only parallelism knob being measured.
		s, err := experiments.NewSuite(experiments.SuiteConfig{
			NNTrainSamples: 60, Workers: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("bench-%d", i),
			Run:         experiments.ShardRunner(s),
			IdleWait:    2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- w.Run(ctx) }()
		defer func() { cancel(); <-done }()
	}

	spec := fleet.CampaignSpec{
		App: "P-BICG", Scheme: "none", Space: "hot",
		Model: "stuck-at:bits=2,blocks=1",
		Runs:  240, ShardRuns: 20, // 12 shards per campaign
	}
	runJob := func(seed int64) {
		spec.Seed = seed
		st, err := coord.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		for {
			cur, ok := coord.Job(st.ID)
			if !ok {
				b.Fatalf("job %s vanished", st.ID)
			}
			if cur.State == fleet.JobDone {
				return
			}
			if cur.State == fleet.JobFailed {
				b.Fatalf("fleet job failed: %s", cur.Error)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Warm-up: builds every worker's checkpoint (golden run, fork pools)
	// outside the timed region, like a fleet that has been up for a while.
	runJob(999)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration keeps the content-addressed store from
		// serving previous iterations' shard results.
		runJob(int64(1000 + i))
	}
}
