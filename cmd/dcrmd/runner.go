package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// jobKinds maps the campaign kinds the API accepts to the experiment each
// one runs. Results marshal directly: every experiment returns exported
// structs.
var jobKinds = map[string]func(*experiments.Suite, jobParams) (any, error){
	"fig6": func(s *experiments.Suite, p jobParams) (any, error) {
		return experiments.Fig6HotVsRest(s, experiments.Fig6Config{Runs: p.Runs, Seed: p.Seed, Apps: p.Apps, Batch: p.Batch})
	},
	"fig7": func(s *experiments.Suite, p jobParams) (any, error) {
		return experiments.Fig7Overhead(s, experiments.Fig7Config{Apps: p.Apps})
	},
	"fig9": func(s *experiments.Suite, p jobParams) (any, error) {
		return experiments.Fig9Resilience(s, experiments.Fig9Config{Runs: p.Runs, Seed: p.Seed, Apps: p.Apps, Batch: p.Batch})
	},
	"breakdown": func(s *experiments.Suite, p jobParams) (any, error) {
		models, err := p.models()
		if err != nil {
			return nil, err
		}
		return experiments.FaultModelBreakdown(s, experiments.BreakdownConfig{
			Runs: p.Runs, Seed: p.Seed, Apps: p.Apps, Models: models, Batch: p.Batch,
		})
	},
}

// campaignKinds marks the kinds that run fault-injection campaigns and
// therefore accept the batch knob; fig7 is a pure timing sweep.
var campaignKinds = map[string]bool{"fig6": true, "fig9": true, "breakdown": true}

// jobParams are the per-campaign knobs accepted by POST /v1/campaigns.
// Zero values fall back to each experiment's own defaults (the paper's
// run counts and seeds, the evaluated application set).
type jobParams struct {
	Apps []string `json:"apps,omitempty"`
	Runs int      `json:"runs,omitempty"`
	Seed int64    `json:"seed,omitempty"`
	// Models are fault-model registry specs ("stuck-at:bits=3,blocks=1"),
	// one per entry; empty falls back to the experiment's own sweep. Only
	// the breakdown kind consumes them today; other kinds reject them so a
	// typo'd request fails loudly instead of silently running defaults.
	Models []string `json:"models,omitempty"`
	// Batch is the campaign batch size: runs classified per functional
	// replay (0 = auto, 1 = unbatched). Purely a performance knob —
	// results are byte-identical at any batch size — accepted only by the
	// campaign kinds; negative values and non-campaign kinds are rejected
	// at submission (HTTP 400).
	Batch int `json:"batch,omitempty"`
}

// models parses the fault-model specs, empty meaning "experiment default".
func (p jobParams) models() ([]fault.Model, error) {
	if len(p.Models) == 0 {
		return nil, nil
	}
	return fault.ParseModels(strings.Join(p.Models, ";"))
}

// jobState is the lifecycle of a submitted campaign.
type jobState string

const (
	statePending jobState = "pending"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// job is one background campaign. The runner mutates it only under its
// mutex; handlers read copies taken under the same lock.
type job struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Params    jobParams `json:"params"`
	State     jobState  `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	Error     string    `json:"error,omitempty"`
	Result    any       `json:"result,omitempty"`
}

// errOverloaded rejects a submission once maxInflight campaigns are live;
// the HTTP layer maps it to 429 with a Retry-After.
var errOverloaded = errors.New("campaign queue full: maximum in-flight campaigns reached, retry later")

// runner owns the experiment suite and the background campaign jobs. The
// suite is built lazily on the first submission (C-NN weight training makes
// construction slow), so the daemon answers /healthz immediately after
// start.
type runner struct {
	cfg experiments.SuiteConfig
	reg *telemetry.Registry
	// maxInflight bounds pending+running jobs (admission control).
	maxInflight int

	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error

	mu     sync.Mutex
	nextID int
	jobs   map[string]*job
	// inflight maps a request's content key to its live (pending or
	// running) job, so identical concurrent submissions coalesce onto one
	// run instead of queuing duplicates. Entries are removed on completion;
	// repeats after that still skip the work through the suite's result
	// store.
	inflight map[string]*job
	live     int
	wg       sync.WaitGroup

	jobsSubmitted *telemetry.CounterVec // dcrm_daemon_jobs_total{kind}
	jobsFinished  *telemetry.CounterVec // dcrm_daemon_jobs_finished_total{state}
	jobsRunning   *telemetry.Gauge      // dcrm_daemon_jobs_running
	jobsCoalesced *telemetry.Counter    // dcrm_daemon_jobs_coalesced_total
	jobsRejected  *telemetry.Counter    // dcrm_daemon_jobs_rejected_total
}

// newRunner wires a runner to reg; the suite inherits reg so campaign and
// fan-out counters from running jobs surface on /metrics live. maxInflight
// bounds concurrently live jobs (0 picks 2×GOMAXPROCS).
func newRunner(cfg experiments.SuiteConfig, reg *telemetry.Registry, maxInflight int) *runner {
	cfg.Telemetry = reg
	if maxInflight <= 0 {
		maxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	return &runner{
		cfg:         cfg,
		reg:         reg,
		maxInflight: maxInflight,
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		jobsSubmitted: reg.CounterVec("dcrm_daemon_jobs_total",
			"Campaign jobs submitted, by kind.", "kind"),
		jobsFinished: reg.CounterVec("dcrm_daemon_jobs_finished_total",
			"Campaign jobs finished, by final state.", "state"),
		jobsRunning: reg.Gauge("dcrm_daemon_jobs_running",
			"Campaign jobs currently executing."),
		jobsCoalesced: reg.Counter("dcrm_daemon_jobs_coalesced_total",
			"Campaign submissions answered with an already-live identical job."),
		jobsRejected: reg.Counter("dcrm_daemon_jobs_rejected_total",
			"Campaign submissions rejected by admission control (HTTP 429)."),
	}
}

// requestKey is the content address of a submission: identical requests
// map to one key regardless of field order or arrival time.
func requestKey(kind string, params jobParams) string {
	return store.NewKey("dcrmd").
		Field("kind", kind).
		Field("apps", params.Apps).
		Field("runs", params.Runs).
		Field("seed", params.Seed).
		Field("models", params.Models).
		Field("batch", params.Batch).
		Key().Hash()
}

// getSuite builds the suite once and memoizes the result, error included.
// The fields are assigned under mu so the health handler can read the
// build state concurrently; callers of getSuite itself are ordered by the
// Once.
func (r *runner) getSuite() (*experiments.Suite, error) {
	r.suiteOnce.Do(func() {
		s, err := experiments.NewSuite(r.cfg)
		r.mu.Lock()
		r.suite, r.suiteErr = s, err
		r.mu.Unlock()
	})
	return r.suite, r.suiteErr
}

// submit validates the request, registers a job, and starts it in the
// background. Identical in-flight submissions coalesce onto the existing
// job (the returned snapshot carries its ID); distinct submissions beyond
// the in-flight bound are rejected with errOverloaded. It returns a
// snapshot of the job serving the request.
func (r *runner) submit(kind string, params jobParams) (job, error) {
	runFn, ok := jobKinds[kind]
	if !ok {
		return job{}, fmt.Errorf("unknown campaign kind %q (want fig6, fig7, fig9, or breakdown)", kind)
	}
	if len(params.Models) > 0 {
		if kind != "breakdown" {
			return job{}, fmt.Errorf("campaign kind %q does not accept models (only breakdown does)", kind)
		}
		// Reject malformed specs at submission so the client sees the parse
		// error as a 400, not a failed background job.
		if _, err := params.models(); err != nil {
			return job{}, err
		}
	}
	if params.Batch < 0 {
		return job{}, fmt.Errorf("campaign batch must be non-negative (0 = auto, 1 = unbatched), got %d", params.Batch)
	}
	if params.Batch != 0 && !campaignKinds[kind] {
		return job{}, fmt.Errorf("campaign kind %q does not accept batch (only fig6, fig9, and breakdown do)", kind)
	}
	key := requestKey(kind, params)

	r.mu.Lock()
	if live := r.inflight[key]; live != nil {
		snap := *live
		snap.Result = nil // still running; nothing to elide, but stay consistent
		r.mu.Unlock()
		r.jobsCoalesced.Inc()
		return snap, nil
	}
	if r.live >= r.maxInflight {
		r.mu.Unlock()
		r.jobsRejected.Inc()
		return job{}, errOverloaded
	}
	r.nextID++
	j := &job{
		ID:        fmt.Sprintf("job-%d", r.nextID),
		Kind:      kind,
		Params:    params,
		State:     statePending,
		Submitted: time.Now().UTC(),
	}
	r.jobs[j.ID] = j
	r.inflight[key] = j
	r.live++
	snap := *j
	r.mu.Unlock()

	r.jobsSubmitted.With(kind).Inc()
	r.wg.Add(1)
	go r.execute(j, key, runFn)
	return snap, nil
}

// prewarmSpecs derives the checkpoint artifacts a job's experiment is about
// to need, so execute can build them in parallel before the campaign
// serializes on them. fig7 is a pure timing sweep — nothing to warm.
func prewarmSpecs(s *experiments.Suite, kind string, p jobParams) ([]experiments.CheckpointSpec, error) {
	switch kind {
	case "fig6":
		return s.Fig6PrewarmSpecs(experiments.Fig6Config{Runs: p.Runs, Seed: p.Seed, Apps: p.Apps, Batch: p.Batch}), nil
	case "fig9":
		return s.Fig9PrewarmSpecs(experiments.Fig9Config{Runs: p.Runs, Seed: p.Seed, Apps: p.Apps, Batch: p.Batch})
	case "breakdown":
		models, err := p.models()
		if err != nil {
			return nil, err
		}
		return s.BreakdownPrewarmSpecs(experiments.BreakdownConfig{
			Runs: p.Runs, Seed: p.Seed, Apps: p.Apps, Models: models, Batch: p.Batch,
		})
	}
	return nil, nil
}

// execute runs one job to completion. Suite construction errors fail the
// job rather than the daemon. Before the experiment starts, the job's
// checkpoint artifacts are prewarmed over the suite's worker pool; any
// prewarm error (a bad app name, a failed build) is the same error the
// experiment itself would have hit, so it fails the job directly.
func (r *runner) execute(j *job, key string, runFn func(*experiments.Suite, jobParams) (any, error)) {
	defer r.wg.Done()

	r.mu.Lock()
	j.State = stateRunning
	j.Started = time.Now().UTC()
	kind, params := j.Kind, j.Params
	r.mu.Unlock()
	r.jobsRunning.Add(1)
	defer r.jobsRunning.Add(-1)

	var result any
	suite, err := r.getSuite()
	if err == nil {
		var specs []experiments.CheckpointSpec
		if specs, err = prewarmSpecs(suite, kind, params); err == nil {
			err = suite.Prewarm(context.Background(), specs)
		}
	}
	if err == nil {
		result, err = runFn(suite, params)
	}

	r.mu.Lock()
	j.Finished = time.Now().UTC()
	if err != nil {
		j.State = stateFailed
		j.Error = err.Error()
	} else {
		j.State = stateDone
		j.Result = result
	}
	delete(r.inflight, key)
	r.live--
	r.jobsFinished.With(string(j.State)).Inc()
	r.mu.Unlock()
}

// get returns a snapshot of one job.
func (r *runner) get(id string) (job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return job{}, false
	}
	return *j, true
}

// list returns snapshots of every job without results (the per-job
// endpoint serves those), ordered by submission.
func (r *runner) list() []job {
	r.mu.Lock()
	out := make([]job, 0, len(r.jobs))
	for _, j := range r.jobs {
		snap := *j
		snap.Result = nil
		out = append(out, snap)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return numericIDLess(out[i].ID, out[k].ID) })
	return out
}

// numericIDLess orders "job-2" before "job-10".
func numericIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// counts tallies jobs by state for the health report.
func (r *runner) counts() map[jobState]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := make(map[jobState]int, 4)
	for _, j := range r.jobs {
		c[j.State]++
	}
	return c
}

// wait blocks until every background job has finished; the graceful
// shutdown path calls it after the listener closes.
func (r *runner) wait() { r.wg.Wait() }
