package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/fleet"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// newFleetServer builds a daemon whose coordinator uses test-speed fault
// tolerance knobs: heartbeats every 20 ms, death after 100 ms of silence,
// a lease long enough that live workers are never stolen from spuriously.
func newFleetServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		DeadAfter:      100 * time.Millisecond,
		LeaseFor:       30 * time.Second,
		MaxAttempts:    20,
		ValidateSpec:   experiments.ValidateSpec,
		Telemetry:      reg,
	})
	r := newRunner(experiments.SuiteConfig{NNTrainSamples: 60, Workers: 2}, reg, 64)
	srv := httptest.NewServer(newMux(r, coord, reg, false))
	t.Cleanup(srv.Close)
	return srv, reg
}

// workerSuite is one fleet member's private experiment suite — each
// in-process worker gets its own, approximating a separate host.
func workerSuite(t testing.TB) *experiments.Suite {
	t.Helper()
	s, err := experiments.NewSuite(experiments.SuiteConfig{NNTrainSamples: 60})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startWorker launches a fleet worker goroutine; the returned channel
// yields Run's verdict.
func startWorker(t *testing.T, ctx context.Context, coordinator, name string, run fleet.ShardRunner) (*fleet.Worker, chan error) {
	t.Helper()
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Run:         run,
		IdleWait:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return w, done
}

// serialFleetResult runs the campaign spec describes in one process — the
// reference the merged fleet output must match byte for byte. A single
// shard spanning [0, Runs) takes the code path Campaign itself delegates
// to, on a suite independent from every worker's.
func serialFleetResult(t *testing.T, spec fleet.CampaignSpec) fault.Result {
	t.Helper()
	s := workerSuite(t)
	sh := fleet.SplitShards("serial", spec, spec.Runs)[0]
	counts, _, err := experiments.RunShard(context.Background(), s, sh)
	if err != nil {
		t.Fatal(err)
	}
	return counts.Result()
}

// submitFleet posts a campaign to the fleet API and returns its job ID.
func submitFleet(t *testing.T, url string, spec fleet.CampaignSpec) string {
	t.Helper()
	payload, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/fleet/campaigns", "application/json",
		strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleet.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 202 || st.ID == "" {
		t.Fatalf("fleet submission = HTTP %d, status %+v", resp.StatusCode, st)
	}
	return st.ID
}

// awaitFleetJob polls the job endpoint until the job leaves JobRunning.
func awaitFleetJob(t *testing.T, url, id string) fleet.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st fleet.JobStatus
		getJSON(t, url+"/v1/fleet/campaigns/"+id, &st)
		if st.State != fleet.JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet job %s stuck: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetSurvivesWorkerDeath is the fabric's end-to-end contract: a
// coordinator drives three workers through a sharded campaign, one worker
// is killed mid-shard (no completion report, heartbeats stop — a crashed
// host), the coordinator steals the abandoned shard, and the merged result
// is still byte-identical to the single-process campaign.
func TestFleetSurvivesWorkerDeath(t *testing.T) {
	srv, reg := newFleetServer(t)
	spec := fleet.CampaignSpec{
		App: "P-BICG", Scheme: "none", Space: "hot",
		Model: "stuck-at:bits=2,blocks=1",
		Runs:  60, Seed: 9, ShardRuns: 5, // 12 shards
	}
	want := serialFleetResult(t, spec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Worker 0 is the victim: it executes its first shard normally, then
	// hangs on its second until the test kills it — leaving that shard
	// assigned-but-abandoned for the others to steal.
	victimSuite := workerSuite(t)
	victimShards := 0
	hanging := make(chan struct{})
	victimRun := func(ctx context.Context, sh fleet.Shard) (fleet.Counts, string, error) {
		victimShards++
		if victimShards > 1 {
			close(hanging)
			<-ctx.Done() // Kill() fires this
			return fleet.Counts{}, "", ctx.Err()
		}
		return experiments.RunShard(ctx, victimSuite, sh)
	}
	victim, victimDone := startWorker(t, ctx, srv.URL, "victim", victimRun)

	for i := 1; i < 3; i++ {
		s := workerSuite(t)
		_, done := startWorker(t, ctx, srv.URL, "survivor", experiments.ShardRunner(s))
		defer func() { cancel(); <-done }()
	}

	id := submitFleet(t, srv.URL, spec)

	// Kill the victim the moment it hangs, mid-shard. Run returns the hard
	// cancellation, and the shard it held is never completed by it.
	select {
	case <-hanging:
	case <-time.After(2 * time.Minute):
		t.Fatal("victim worker never reached its second shard")
	}
	victim.Kill()
	if err := <-victimDone; err == nil {
		t.Fatal("killed worker returned nil, want its hard-cancellation error")
	}

	st := awaitFleetJob(t, srv.URL, id)
	if st.State != fleet.JobDone {
		t.Fatalf("fleet job ended %q: %s", st.State, st.Error)
	}
	if st.ShardsDone != st.ShardsTotal || st.ShardsTotal != 12 {
		t.Errorf("shards done %d/%d, want 12/12", st.ShardsDone, st.ShardsTotal)
	}

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(st.Merged.Result())
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("fleet result %s != serial result %s", gotJSON, wantJSON)
	}

	// The abandoned shard was stolen, not lost.
	if stolen := counterValue(t, reg, "dcrm_fleet_shards_stolen_total"); stolen < 1 {
		t.Errorf("dcrm_fleet_shards_stolen_total = %v, want >= 1", stolen)
	}

	// The registry saw all three workers; the victim is no longer alive.
	var workers struct {
		Workers []fleet.WorkerStatus `json:"workers"`
	}
	getJSON(t, srv.URL+"/v1/fleet/workers", &workers)
	if len(workers.Workers) != 3 {
		t.Fatalf("worker registry has %d entries, want 3", len(workers.Workers))
	}
	alive := 0
	for _, w := range workers.Workers {
		if w.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("%d workers alive after the kill, want 2", alive)
	}
}

// TestFleetSingleWorkerParity is the CI shard-parity gate at the daemon
// level: a one-worker fleet with an uneven shard split must produce output
// byte-identical to the serial campaign.
func TestFleetSingleWorkerParity(t *testing.T) {
	srv, reg := newFleetServer(t)
	spec := fleet.CampaignSpec{
		App: "P-BICG", Scheme: "none", Space: "hot",
		Model: "stuck-at:bits=2,blocks=1",
		Runs:  40, Seed: 7, ShardRuns: 7, // uneven: 5×7 + 1×5
	}
	want := serialFleetResult(t, spec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := workerSuite(t)
	_, done := startWorker(t, ctx, srv.URL, "solo", experiments.ShardRunner(s))
	defer func() { cancel(); <-done }()

	id := submitFleet(t, srv.URL, spec)
	st := awaitFleetJob(t, srv.URL, id)
	if st.State != fleet.JobDone {
		t.Fatalf("fleet job ended %q: %s", st.State, st.Error)
	}

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(st.Merged.Result())
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("1-worker fleet result %s != serial result %s", gotJSON, wantJSON)
	}
	if stolen := counterValue(t, reg, "dcrm_fleet_shards_stolen_total"); stolen != 0 {
		t.Errorf("dcrm_fleet_shards_stolen_total = %v on a healthy fleet, want 0", stolen)
	}
}

// counterValue reads one unlabeled counter from the registry (0 when the
// counter was never touched).
func counterValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	sample, ok := reg.Snapshot().Get(name)
	if !ok {
		return 0
	}
	return sample.Value
}
