package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fleet"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// newCoordinator builds the daemon's fleet control plane: campaign specs
// are vetted by the experiment layer at POST time, and the fleet counters
// land in the daemon registry so /metrics shows scheduling live.
func newCoordinator(reg *telemetry.Registry) *fleet.Coordinator {
	return fleet.NewCoordinator(fleet.CoordinatorConfig{
		ValidateSpec: experiments.ValidateSpec,
		Telemetry:    reg,
	})
}

// workerMux is the worker-mode HTTP surface: the worker's own /healthz
// self-report and /metrics exposition, so every fleet member is observable
// the same way the coordinator is.
func workerMux(w *fleet.Worker, reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, req *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{
			"status": "healthy",
			"worker": w.Health(),
		})
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(rw)
	})
	return mux
}

// runWorker runs the daemon in worker mode (-join): it registers with the
// coordinator, executes campaign shards through the experiment suite, and
// serves its own health and metrics on addr. The suite builds lazily on
// the first shard so the worker joins (and answers /healthz) immediately.
// Cancelling ctx (SIGTERM) drains: the current shard finishes and reports
// before the worker leaves.
func runWorker(ctx context.Context, coordinator, addr string, cfg experiments.SuiteConfig, reg *telemetry.Registry) error {
	cfg.Telemetry = reg
	var (
		suiteOnce sync.Once
		suite     *experiments.Suite
		suiteErr  error
	)
	run := func(ctx context.Context, sh fleet.Shard) (fleet.Counts, string, error) {
		suiteOnce.Do(func() { suite, suiteErr = experiments.NewSuite(cfg) })
		if suiteErr != nil {
			return fleet.Counts{}, "", suiteErr
		}
		return experiments.RunShard(ctx, suite, sh)
	}

	name, _ := os.Hostname()
	if name == "" {
		name = "dcrmd-worker"
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Addr:        addr,
		Run:         run,
		Telemetry:   reg,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: addr, Handler: workerMux(w, reg)}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dcrmd: worker for %s, serving health on %s\n", coordinator, addr)
		errc <- srv.ListenAndServe()
	}()

	workErr := make(chan error, 1)
	go func() { workErr <- w.Run(ctx) }()

	select {
	case err := <-errc:
		// The health listener died; take the worker down with it.
		w.Kill()
		<-workErr
		return err
	case err := <-workErr:
		// Graceful drain finished (or the worker was killed); close the
		// health listener and report the worker's verdict.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if serr := srv.Shutdown(shutdownCtx); serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		return err
	}
}
