package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"github.com/datacentric-gpu/dcrm/internal/fleet"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

// componentHealth is one entry of the /healthz report, in the style of
// gpud: a named subsystem with a coarse health state and a human message.
type componentHealth struct {
	Name    string `json:"name"`
	Health  string `json:"health"`
	Message string `json:"message,omitempty"`
}

// healthReport is the /healthz body.
type healthReport struct {
	Status     string            `json:"status"`
	Version    string            `json:"version"`
	Components []componentHealth `json:"components"`
}

// newMux wires the daemon's HTTP surface:
//
//	GET  /healthz            gpud-style component health
//	GET  /metrics            Prometheus text exposition of reg
//	GET  /v1/experiments     all submitted jobs (without results)
//	POST /v1/campaigns       submit a campaign: {"kind":"fig6","runs":100,...}
//	GET  /v1/campaigns/{id}  one job, result included once done
//	/v1/fleet/*              the campaign fabric's control plane (coord.Register)
//	/debug/pprof/*           Go runtime profiling, only when enablePprof
//
// The pprof surface is off by default (the -pprof flag): profiling
// endpoints expose goroutine stacks and heap contents and can run
// CPU-consuming captures, so an operator must opt in before they exist on
// a listening daemon. When disabled the paths 404 like any other unknown
// route.
func newMux(r *runner, coord *fleet.Coordinator, reg *telemetry.Registry, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	coord.Register(mux)
	if enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, health(r, coord))
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": r.list()})
	})

	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Kind string `json:"kind"`
			jobParams
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed request body: %v", err))
			return
		}
		j, err := r.submit(body.Kind, body.jobParams)
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, j)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, req *http.Request) {
		j, ok := r.get(req.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no campaign %q", req.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j)
	})

	return mux
}

// health assembles the component report. The suite component reflects lazy
// construction: "initializing" until the first campaign forces the build.
func health(r *runner, coord *fleet.Coordinator) healthReport {
	rep := healthReport{Status: "healthy", Version: version.String()}

	suiteHealth := componentHealth{Name: "suite", Health: "initializing",
		Message: "experiment suite builds on first campaign"}
	r.mu.Lock()
	built, buildErr := r.suite != nil, r.suiteErr
	r.mu.Unlock()
	switch {
	case buildErr != nil:
		suiteHealth.Health = "unhealthy"
		suiteHealth.Message = buildErr.Error()
		rep.Status = "unhealthy"
	case built:
		suiteHealth.Health = "healthy"
		suiteHealth.Message = ""
	}
	rep.Components = append(rep.Components, suiteHealth)

	counts := r.counts()
	jobsHealth := componentHealth{Name: "jobs", Health: "healthy",
		Message: fmt.Sprintf("%d running, %d done, %d failed",
			counts[stateRunning]+counts[statePending], counts[stateDone], counts[stateFailed])}
	rep.Components = append(rep.Components, jobsHealth)

	// The fleet component mirrors the worker registry: healthy while every
	// registered worker heartbeats, degraded once some have gone silent
	// (their shards are being stolen, not lost, so the daemon stays up).
	workers := coord.Workers()
	alive := 0
	for _, w := range workers {
		if w.Alive {
			alive++
		}
	}
	running := 0
	for _, j := range coord.Jobs() {
		if j.State == fleet.JobRunning {
			running++
		}
	}
	fleetHealth := componentHealth{Name: "fleet", Health: "healthy",
		Message: fmt.Sprintf("%d/%d workers alive, %d campaigns running",
			alive, len(workers), running)}
	if alive < len(workers) {
		fleetHealth.Health = "degraded"
	}
	rep.Components = append(rep.Components, fleetHealth)
	return rep
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
