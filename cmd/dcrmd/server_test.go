package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// newTestServer builds a daemon with a fast suite (tiny NN training set)
// and serves it from httptest. The in-flight bound is generous so only the
// dedicated admission-control test exercises 429s.
func newTestServer(t *testing.T) (*httptest.Server, *runner) {
	t.Helper()
	reg := telemetry.NewRegistry()
	r := newRunner(experiments.SuiteConfig{NNTrainSamples: 60, Workers: 2}, reg, 64)
	srv := httptest.NewServer(newMux(r, newCoordinator(reg), reg, false))
	t.Cleanup(func() {
		srv.Close()
		r.wait()
	})
	return srv, r
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp
}

// TestDaemonEndToEnd drives the whole loop: health on an idle daemon,
// campaign submission, polling to completion, the results payload, and the
// live Prometheus counters the background run produced.
func TestDaemonEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)

	// Idle daemon: healthy, suite not yet built.
	var rep healthReport
	if resp := getJSON(t, srv.URL+"/healthz", &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	if rep.Status != "healthy" {
		t.Fatalf("idle daemon reports %q", rep.Status)
	}
	suiteState := ""
	for _, c := range rep.Components {
		if c.Name == "suite" {
			suiteState = c.Health
		}
	}
	if suiteState != "initializing" {
		t.Errorf("idle suite component = %q, want initializing", suiteState)
	}

	// Submit a small fig6 campaign.
	body := `{"kind":"fig6","apps":["P-BICG"],"runs":8,"seed":3}`
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted job
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/campaigns = %d", resp.StatusCode)
	}
	if submitted.ID == "" || submitted.Kind != "fig6" {
		t.Fatalf("bad submission response: %+v", submitted)
	}

	// Poll until the background runner finishes it.
	deadline := time.Now().Add(2 * time.Minute)
	var finished job
	for {
		getJSON(t, srv.URL+"/v1/campaigns/"+submitted.ID, &finished)
		if finished.State == stateDone || finished.State == stateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in state %q", finished.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if finished.State != stateDone {
		t.Fatalf("campaign failed: %s", finished.Error)
	}
	if finished.Result == nil {
		t.Fatal("finished campaign has no result")
	}
	cells, ok := finished.Result.([]any)
	if !ok || len(cells) == 0 {
		t.Fatalf("fig6 result is not a non-empty array: %T", finished.Result)
	}

	// The job listing shows it done, without the result payload.
	var listing struct {
		Experiments []job `json:"experiments"`
	}
	getJSON(t, srv.URL+"/v1/experiments", &listing)
	if len(listing.Experiments) != 1 {
		t.Fatalf("listing has %d jobs, want 1", len(listing.Experiments))
	}
	if got := listing.Experiments[0]; got.State != stateDone || got.Result != nil {
		t.Errorf("listing entry = state %q result %v, want done with elided result", got.State, got.Result)
	}

	// The background run filled the registry: campaign outcomes and daemon
	// job counters are on /metrics in Prometheus text format.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"# TYPE dcrm_fault_runs_total counter",
		`dcrm_daemon_jobs_total{kind="fig6"} 1`,
		`dcrm_daemon_jobs_finished_total{state="done"} 1`,
		"dcrm_experiment_tasks_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Health now reports the suite as built.
	getJSON(t, srv.URL+"/healthz", &rep)
	for _, c := range rep.Components {
		if c.Name == "suite" && c.Health != "healthy" {
			t.Errorf("suite component = %q after a campaign, want healthy", c.Health)
		}
	}
}

func TestDaemonRejectsUnknownKind(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"kind":"fig42"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind = %d, want 400", resp.StatusCode)
	}

	resp2, err := http.Post(srv.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp2.StatusCode)
	}
}

func TestDaemonUnknownCampaign(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/campaigns/job-999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", resp.StatusCode)
	}
}

// TestDaemonBreakdownKind drives the fault-model breakdown job: model-spec
// validation at submission time, the background run, and DUE counts
// surfacing in the JSON result.
func TestDaemonBreakdownKind(t *testing.T) {
	srv, _ := newTestServer(t)

	// Malformed and misplaced model specs fail fast with 400, before any
	// background work starts.
	for _, body := range []string{
		`{"kind":"breakdown","models":["flaky"]}`,
		`{"kind":"breakdown","models":["transient:flips=two"]}`,
		`{"kind":"fig6","models":["transient"]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}

	body := `{"kind":"breakdown","apps":["P-BICG"],"runs":6,"seed":3,"models":["transient:flips=2"]}`
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted job
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST breakdown = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var finished job
	for {
		getJSON(t, srv.URL+"/v1/campaigns/"+submitted.ID, &finished)
		if finished.State == stateDone || finished.State == stateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breakdown stuck in state %q", finished.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if finished.State != stateDone {
		t.Fatalf("breakdown failed: %s", finished.Error)
	}
	cells, ok := finished.Result.([]any)
	if !ok || len(cells) != 3 { // baseline + two schemes × one model
		t.Fatalf("breakdown result = %T with %d cells, want 3", finished.Result, len(cells))
	}
	// Every cell carries the full outcome taxonomy, DUE included, and the
	// model identity that produced it.
	for _, raw := range cells {
		cell, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("cell is %T", raw)
		}
		res, ok := cell["Result"].(map[string]any)
		if !ok {
			t.Fatalf("cell result is %T", cell["Result"])
		}
		if _, ok := res["DUERuns"]; !ok {
			t.Errorf("cell result has no DUERuns field: %v", res)
		}
		model, ok := cell["Model"].(map[string]any)
		if !ok || model["Name"] != "transient" {
			t.Errorf("cell model = %v, want transient", cell["Model"])
		}
	}
}

// TestPprofGatedByFlag pins the profiling surface's opt-in contract: with
// -pprof off (the default) every /debug/pprof path is an unknown route and
// 404s; with it on, the index and the cheap sub-profiles serve.
func TestPprofGatedByFlag(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := newRunner(experiments.SuiteConfig{NNTrainSamples: 60, Workers: 2}, reg, 64)
	off := httptest.NewServer(newMux(r, newCoordinator(reg), reg, false))
	defer off.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(off.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with pprof disabled = %d, want 404", path, resp.StatusCode)
		}
	}

	on := httptest.NewServer(newMux(r, newCoordinator(reg), reg, true))
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with pprof enabled = %d, want 200", path, resp.StatusCode)
		}
	}
	r.wait()
}
