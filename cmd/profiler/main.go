// Command profiler reproduces the paper's access-pattern analysis: the
// Fig. 3 per-block read profiles, the Fig. 4 warp-sharing series, and the
// Table III data-object inventory.
//
// Usage:
//
//	profiler            # Fig. 3 summary for all ten applications
//	profiler -warps     # Fig. 4 series
//	profiler -objects   # Table III
//	profiler -series P-BICG  # raw normalized series for one app
//	profiler -list      # application names
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profiler:", err)
		os.Exit(1)
	}
}

func run() error {
	warps := flag.Bool("warps", false, "print the Fig. 4 warp-sharing series")
	objects := flag.Bool("objects", false, "print the Table III data-object inventory")
	series := flag.String("series", "", "print one application's normalized read series")
	list := flag.Bool("list", false, "list application names")
	points := flag.Int("points", 40, "series points")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}

	suite, err := experiments.NewSuite(experiments.SuiteConfig{})
	if err != nil {
		return err
	}

	if *list {
		for _, n := range suite.AllNames() {
			fmt.Println(n)
		}
		return nil
	}

	switch {
	case *warps:
		results, err := experiments.Fig4WarpSharing(suite, *points)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 4 — % of active warps sharing each block (blocks sorted by reads, ascending)")
		for _, r := range results {
			fmt.Printf("\n%s:\n", r.App)
			printSeries(r.Series, "%5.1f")
		}
	case *objects:
		rows, err := experiments.Table3DataObjects(suite)
		if err != nil {
			return err
		}
		fmt.Println("Table III — input data objects (measured ranking; * = hot)")
		var cells [][]string
		for _, r := range rows {
			names := ""
			for i, o := range r.Objects {
				if i > 0 {
					names += ", "
				}
				if o.Hot {
					names += "*"
				}
				names += o.Name
			}
			cells = append(cells, []string{
				r.App, names,
				fmt.Sprintf("%.3f%%", r.HotSizePercent),
				fmt.Sprintf("%.2f%%", r.HotAccessPercent),
			})
		}
		fmt.Print(experiments.RenderTable(
			[]string{"application", "objects (by accesses)", "hot size", "hot accesses"}, cells))
	case *series != "":
		p, err := suite.Profile(*series)
		if err != nil {
			return err
		}
		fmt.Printf("Fig. 3 — %s normalized reads per block (sorted ascending)\n", *series)
		printSeries(p.NormalizedReadSeries(*points), "%6.4f")
	default:
		results, err := experiments.Fig3AccessProfiles(suite, *points)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 3 — access-profile summary (sparkline: per-block reads, sorted ascending)")
		var cells [][]string
		for _, r := range results {
			shape := "hot knee"
			if !r.HotPattern {
				shape = "flat/staircase"
			}
			cells = append(cells, []string{
				r.App,
				fmt.Sprintf("%.0f×", r.MaxMinRatio),
				shape,
				experiments.Sparkline(r.Series),
			})
		}
		fmt.Print(experiments.RenderTable([]string{"application", "max/min reads", "profile", "shape"}, cells))
	}
	return nil
}

func printSeries(s []float64, format string) {
	for i, v := range s {
		if i > 0 && i%10 == 0 {
			fmt.Println()
		}
		fmt.Printf(format+" ", v)
	}
	fmt.Println()
}
