// Command repro regenerates every table and figure of the paper's
// evaluation in one invocation, printing paper-vs-measured rows. The run
// count for the fault-injection figures is configurable; the paper uses
// 1000 runs per configuration (95% CI ±3%). Independent work units fan
// out over -workers goroutines (task progress and an ETA appear on
// stderr); results are bit-identical at any worker count.
//
// Usage:
//
//	repro [-runs 200] [-workers 0] [-sim-shards 0] [-fig 3|4|6|7|9] [-table 1|2|3] [-scale small] [-csv dir]
//	      [-store-dir dir] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -store-dir, every figure and table result is persisted to a
// content-addressed on-disk store keyed by the full experiment
// configuration and simulator version: a repeat invocation with the same
// flags answers from the store, byte-identical to a fresh computation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 200, "fault-injection runs per configuration (paper: 1000)")
	fig := flag.Int("fig", 0, "regenerate a single figure (2,3,4,6,7,9)")
	table := flag.Int("table", 0, "regenerate a single table (1,2,3)")
	csvDir := flag.String("csv", "", "also export figure data as CSV into this directory")
	storeDir := flag.String("store-dir", "", "persist results to this content-addressed store directory (created if missing); repeat runs warm-start from it")
	scale := flag.String("scale", "small", "workload input scale: small, medium, large")
	workers := flag.Int("workers", 0, "experiment fan-out goroutines (0 = GOMAXPROCS); results are identical at any count")
	simShards := flag.Int("sim-shards", 0, "timing-replay event-scheduler shards (0 = GOMAXPROCS); results are identical at any count")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress/ETA reporter")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (go tool pprof) to this file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiling()
	exportDir = *csvDir

	cfg := experiments.SuiteConfig{Workers: *workers, SimShards: *simShards}
	cfg.Progress = experiments.Progress(*quiet, os.Stderr)
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			return err
		}
		cfg.Store = st
	}
	switch *scale {
	case "small":
		cfg.Scale = experiments.ScaleSmall
	case "medium":
		cfg.Scale = experiments.ScaleMedium
	case "large":
		cfg.Scale = experiments.ScaleLarge
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	all := *fig == 0 && *table == 0
	if all || *table == 1 {
		printTable1()
	}
	if all || *table == 2 {
		if err := printTable2(suite); err != nil {
			return err
		}
	}
	if all || *fig == 2 {
		printFig2()
	}
	if all || *fig == 3 {
		if err := printFig3(suite); err != nil {
			return err
		}
	}
	if all || *fig == 4 {
		if err := printFig4(suite); err != nil {
			return err
		}
	}
	if all || *table == 3 {
		if err := printTable3(suite); err != nil {
			return err
		}
	}
	if all || *fig == 6 {
		if err := printFig6(suite, *runs); err != nil {
			return err
		}
	}
	if all || *fig == 7 {
		if err := printFig7(suite); err != nil {
			return err
		}
	}
	if all || *fig == 9 {
		if err := printFig9(suite, *runs); err != nil {
			return err
		}
	}
	return nil
}

// exportDir receives CSV exports when the -csv flag is set.
var exportDir string

// startProfiling starts a CPU profile and arranges a heap profile snapshot,
// as requested; the returned stop function finalizes both and must run
// before process exit.
func startProfiling(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

func section(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func printTable1() {
	section("Table I — simulated GPU configuration")
	var rows [][]string
	for _, r := range experiments.Table1Config(arch.Default()) {
		rows = append(rows, []string{r.Parameter, r.Value})
	}
	fmt.Print(experiments.RenderTable([]string{"parameter", "value"}, rows))
}

func printTable2(suite *experiments.Suite) error {
	section("Table II — output error metrics")
	t2, err := experiments.Table2ErrorMetrics(suite)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range t2 {
		rows = append(rows, []string{r.App, r.OutputFormat, r.Metric.String(), fmt.Sprintf("%g", r.Threshold)})
	}
	fmt.Print(experiments.RenderTable([]string{"application", "output", "metric", "SDC threshold"}, rows))
	return nil
}

func printFig2() {
	section("Fig. 2 — L2 cache size trend")
	if exportDir != "" {
		if err := experiments.ExportFig2CSV(exportDir); err != nil {
			fmt.Fprintln(os.Stderr, "repro: csv:", err)
		}
	}
	var rows [][]string
	for _, r := range experiments.Fig2L2Trend() {
		rows = append(rows, []string{r.Vendor, r.GPU, fmt.Sprintf("%d", r.Year), fmt.Sprintf("%d", r.L2KB)})
	}
	fmt.Print(experiments.RenderTable([]string{"vendor", "GPU", "year", "L2 (KB)"}, rows))
}

func printFig3(suite *experiments.Suite) error {
	section("Fig. 3 — per-block access profiles")
	results, err := experiments.Fig3AccessProfiles(suite, 40)
	if err != nil {
		return err
	}
	if exportDir != "" {
		if err := experiments.ExportFig3CSV(exportDir, results); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, r := range results {
		shape := "hot knee (a)-(f)"
		if !r.HotPattern {
			shape = "no knee (g)-(h)"
		}
		rows = append(rows, []string{r.App, fmt.Sprintf("%.0f×", r.MaxMinRatio), shape})
	}
	fmt.Print(experiments.RenderTable([]string{"application", "max/min block reads", "profile shape"}, rows))
	return nil
}

func printFig4(suite *experiments.Suite) error {
	section("Fig. 4 — warp sharing of data memory blocks")
	results, err := experiments.Fig4WarpSharing(suite, 40)
	if err != nil {
		return err
	}
	if exportDir != "" {
		if err := experiments.ExportFig4CSV(exportDir, results); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.App,
			fmt.Sprintf("%.1f%%", r.Series[0]),
			fmt.Sprintf("%.1f%%", r.Series[len(r.Series)-1]),
		})
	}
	fmt.Print(experiments.RenderTable([]string{"application", "coldest-block share", "hottest-block share"}, rows))
	return nil
}

func printTable3(suite *experiments.Suite) error {
	section("Table III — data-object inventory")
	rows, err := experiments.Table3DataObjects(suite)
	if err != nil {
		return err
	}
	if exportDir != "" {
		if err := experiments.ExportTable3CSV(exportDir, rows); err != nil {
			return err
		}
	}
	var cells [][]string
	for _, r := range rows {
		names := ""
		for i, o := range r.Objects {
			if i > 0 {
				names += ", "
			}
			if o.Hot {
				names += "*"
			}
			names += o.Name
		}
		cells = append(cells, []string{
			r.App, names,
			fmt.Sprintf("%.3f%%", r.HotSizePercent),
			fmt.Sprintf("%.2f%%", r.HotAccessPercent),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "objects by accesses (* = hot)", "hot size", "hot accesses"}, cells))
	return nil
}

func printFig6(suite *experiments.Suite, runs int) error {
	section(fmt.Sprintf("Fig. 6 — hot vs rest vulnerability (%d runs/config)", runs))
	cells, err := experiments.Fig6HotVsRest(suite, experiments.Fig6Config{Runs: runs})
	if err != nil {
		return err
	}
	if exportDir != "" {
		if err := experiments.ExportFig6CSV(exportDir, cells); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			c.App, c.Space, c.Model.String(),
			fmt.Sprintf("%d/%d", c.Result.SDCRuns, c.Result.Runs),
		})
	}
	fmt.Print(experiments.RenderTable([]string{"application", "space", "faults", "SDC"}, rows))
	return nil
}

func printFig7(suite *experiments.Suite) error {
	section("Fig. 7 — performance overhead of the resilience schemes")
	points, err := experiments.Fig7Overhead(suite, experiments.Fig7Config{})
	if err != nil {
		return err
	}
	if exportDir != "" {
		if err := experiments.ExportFig7CSV(exportDir, points); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			p.App, p.Scheme.String(), fmt.Sprintf("%d", p.Level),
			fmt.Sprintf("%.4f", p.NormTime), fmt.Sprintf("%.4f", p.NormMisses),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "scheme", "objects", "norm time", "norm L1 misses"}, rows))
	hot, allLv, err := experiments.LevelMaps(suite, suite.EvaluatedNames())
	if err != nil {
		return err
	}
	sum := experiments.SummarizeFig7(points, hot, allLv)
	fmt.Printf("\npaper vs measured averages:\n")
	fmt.Printf("  detection  hot-only: paper +1.2%%   measured %+.2f%%\n", 100*sum.DetectionHotOverhead)
	fmt.Printf("  correction hot-only: paper +3.4%%   measured %+.2f%%\n", 100*sum.CorrectionHotOverhead)
	fmt.Printf("  detection  all:      paper +40.65%% measured %+.2f%%\n", 100*sum.DetectionAllOverhead)
	fmt.Printf("  correction all:      paper +74.24%% measured %+.2f%%\n", 100*sum.CorrectionAllOverhead)
	return nil
}

func printFig9(suite *experiments.Suite, runs int) error {
	section(fmt.Sprintf("Fig. 9 — SDC vs protection level (%d runs/config)", runs))
	cells, err := experiments.Fig9Resilience(suite, experiments.Fig9Config{Runs: runs})
	if err != nil {
		return err
	}
	if exportDir != "" {
		if err := experiments.ExportFig9CSV(exportDir, cells); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, c := range cells {
		scheme := c.Scheme.String()
		if c.Scheme == core.None {
			scheme = "baseline"
		}
		rows = append(rows, []string{
			c.App, scheme, fmt.Sprintf("%d", c.Level), c.Model.String(),
			fmt.Sprintf("%d/%d", c.Result.SDCRuns, c.Result.Runs),
			fmt.Sprintf("%d", c.Result.DetectedRuns),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "scheme", "objects", "faults", "SDC", "detected"}, rows))

	hot := map[string]int{}
	for _, name := range suite.EvaluatedNames() {
		app, err := suite.App(name)
		if err != nil {
			return err
		}
		hot[name] = app.HotCount
	}
	fmt.Printf("\nSDC drop with hot-object protection: paper 98.97%%, measured %.2f%%\n",
		experiments.SDCDropPercent(cells, hot))
	return nil
}
