package main

import (
	"fmt"
	"io"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
)

// progressReporter renders suite fan-out progress as a single rewriting
// stderr line per experiment phase: completed/total tasks, elapsed time,
// and a completion-rate ETA. It writes to stderr only, so stdout stays
// byte-identical across worker counts. The suite serializes events, so no
// locking is needed here.
type progressReporter struct {
	w       io.Writer
	now     func() time.Time
	phase   string
	started time.Time
}

func newProgressReporter(w io.Writer) *progressReporter {
	return &progressReporter{w: w, now: time.Now}
}

// progressFunc returns the suite progress hook run() wires up: nil under
// -quiet (the suite then skips event delivery entirely), otherwise a
// reporter writing to w.
func progressFunc(quiet bool, w io.Writer) experiments.ProgressFunc {
	if quiet {
		return nil
	}
	return newProgressReporter(w).Report
}

// Report consumes one suite progress event.
func (r *progressReporter) Report(ev experiments.ProgressEvent) {
	if ev.Phase != r.phase {
		r.phase = ev.Phase
		r.started = r.now()
	}
	elapsed := r.now().Sub(r.started).Truncate(time.Second)
	line := fmt.Sprintf("[%s] %d/%d  elapsed %s", ev.Phase, ev.Done, ev.Total, elapsed)
	if ev.Done > 0 && ev.Done < ev.Total {
		eta := time.Duration(float64(elapsed) / float64(ev.Done) * float64(ev.Total-ev.Done)).Truncate(time.Second)
		line += fmt.Sprintf("  eta %s", eta)
	}
	// \r rewrites the line in place; pad to clear a longer previous line.
	fmt.Fprintf(r.w, "\r%-70s", line)
	if ev.Done >= ev.Total {
		fmt.Fprintln(r.w)
	}
}
