package dcrm_test

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm"
)

// Example_protectWorkload walks the paper's full flow on one application:
// profile, identify the hot data objects, and quantify the protection's
// reliability benefit and performance cost.
func Example_protectWorkload() {
	lib, err := dcrm.New(dcrm.WithFastNN(), dcrm.WithSeed(1))
	if err != nil {
		panic(err)
	}
	w, err := lib.Workload("P-BICG")
	if err != nil {
		panic(err)
	}

	rep, err := w.Profile()
	if err != nil {
		panic(err)
	}
	hot := 0
	for _, o := range rep.Objects {
		if o.Hot {
			hot++
		}
	}
	fmt.Printf("hot objects: %d of %d\n", hot, len(rep.Objects))

	base, err := w.Campaign(dcrm.CampaignConfig{
		Faults: dcrm.FaultModel{Bits: 3, Blocks: 5},
		Runs:   100,
		Target: dcrm.TargetHot,
	})
	if err != nil {
		panic(err)
	}
	prot, err := w.Campaign(dcrm.CampaignConfig{
		Scheme: dcrm.Correction,
		Faults: dcrm.FaultModel{Bits: 3, Blocks: 5},
		Runs:   100,
		Target: dcrm.TargetHot,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("SDC eliminated: %v\n", base.SDC > 0 && prot.SDC == 0)

	perf, err := w.Performance(dcrm.Correction, w.HotObjectCount())
	if err != nil {
		panic(err)
	}
	fmt.Printf("overhead under 5%%: %v\n", perf.NormalizedTime < 1.05)
	// Output:
	// hot objects: 2 of 3
	// SDC eliminated: true
	// overhead under 5%: true
}
