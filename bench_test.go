package dcrm

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the paper-vs-measured record):
//
//	go test -bench=. -benchmem
//
// Campaign benchmarks default to benchRuns fault injections per
// configuration so the whole harness completes in minutes on one core; the
// cmd/repro tool exposes a -runs flag for the paper's full 1000-run
// campaigns. Reported custom metrics carry the headline numbers (SDC drop,
// overhead percentages) so a bench run doubles as a reproduction record.

import (
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// benchRuns is the per-configuration fault-injection count used by the
// benchmark harness (the paper uses 1000; see cmd/repro -runs).
const benchRuns = 60

// The default suite fans experiment work units out over GOMAXPROCS
// goroutines (SuiteConfig.Workers = 0); the *Serial benchmark variants pin
// Workers to 1 so a -bench run records the suite-level speedup. Both paths
// produce identical results by construction (per-run seeds are derived
// from run indices, never from scheduling).
var (
	benchSuiteOnce sync.Once
	benchSuiteVal  *experiments.Suite
	benchSuiteErr  error

	benchSerialSuiteOnce sync.Once
	benchSerialSuiteVal  *experiments.Suite
	benchSerialSuiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		benchSuiteVal, benchSuiteErr = experiments.NewSuite(experiments.SuiteConfig{})
	})
	if benchSuiteErr != nil {
		b.Fatalf("suite: %v", benchSuiteErr)
	}
	return benchSuiteVal
}

func benchSerialSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSerialSuiteOnce.Do(func() {
		benchSerialSuiteVal, benchSerialSuiteErr = experiments.NewSuite(experiments.SuiteConfig{Workers: 1})
	})
	if benchSerialSuiteErr != nil {
		b.Fatalf("suite: %v", benchSerialSuiteErr)
	}
	return benchSerialSuiteVal
}

// BenchmarkFig2L2Trend regenerates the motivation figure's dataset.
func BenchmarkFig2L2Trend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2L2Trend()
		if len(rows) < 10 {
			b.Fatal("missing Fig. 2 rows")
		}
	}
}

// BenchmarkFig3AccessProfiles regenerates the per-block access profiles of
// all ten applications (Fig. 3).
func BenchmarkFig3AccessProfiles(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig3AccessProfiles(s, 100)
		if err != nil {
			b.Fatal(err)
		}
		hot := 0
		for _, r := range results {
			if r.HotPattern {
				hot++
			}
		}
		b.ReportMetric(float64(hot), "hot-knee-apps")
	}
}

// BenchmarkFig4WarpSharing regenerates the warp-sharing series (Fig. 4).
func BenchmarkFig4WarpSharing(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig4WarpSharing(s, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 4 {
			b.Fatal("wrong app count")
		}
	}
}

// BenchmarkTable3DataObjects regenerates the data-object inventory
// (Table III).
func BenchmarkTable3DataObjects(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3DataObjects(s)
		if err != nil {
			b.Fatal(err)
		}
		var avgHotAccess float64
		for _, r := range rows {
			avgHotAccess += r.HotAccessPercent
		}
		b.ReportMetric(avgHotAccess/float64(len(rows)), "avg-hot-access-%")
	}
}

// BenchmarkFig6HotVsRest regenerates the hot-vs-rest vulnerability study
// (Fig. 6) at benchRuns injections per configuration.
func BenchmarkFig6HotVsRest(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig6HotVsRest(s, experiments.Fig6Config{Runs: benchRuns})
		if err != nil {
			b.Fatal(err)
		}
		var hotSDC, restSDC int
		for _, c := range cells {
			if c.Space == "hot" {
				hotSDC += c.Result.SDCRuns
			} else {
				restSDC += c.Result.SDCRuns
			}
		}
		b.ReportMetric(float64(hotSDC), "hot-sdc-total")
		b.ReportMetric(float64(restSDC), "rest-sdc-total")
	}
}

// BenchmarkFig7Overhead regenerates the performance-overhead sweep (Fig. 7)
// on the timing simulator.
func BenchmarkFig7Overhead(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7Overhead(s, experiments.Fig7Config{})
		if err != nil {
			b.Fatal(err)
		}
		hot, all, err := experiments.LevelMaps(s, s.EvaluatedNames())
		if err != nil {
			b.Fatal(err)
		}
		sum := experiments.SummarizeFig7(points, hot, all)
		b.ReportMetric(100*sum.DetectionHotOverhead, "det-hot-%")
		b.ReportMetric(100*sum.CorrectionHotOverhead, "corr-hot-%")
		b.ReportMetric(100*sum.DetectionAllOverhead, "det-all-%")
		b.ReportMetric(100*sum.CorrectionAllOverhead, "corr-all-%")
	}
}

// BenchmarkFig9Resilience regenerates the SDC-vs-protection study (Fig. 9)
// at benchRuns injections per configuration.
func BenchmarkFig9Resilience(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig9Resilience(s, experiments.Fig9Config{Runs: benchRuns})
		if err != nil {
			b.Fatal(err)
		}
		hot := make(map[string]int)
		for _, name := range s.EvaluatedNames() {
			app, err := s.App(name)
			if err != nil {
				b.Fatal(err)
			}
			hot[name] = app.HotCount
		}
		b.ReportMetric(experiments.SDCDropPercent(cells, hot), "sdc-drop-%")
	}
}

// BenchmarkFig6HotVsRestSerial is BenchmarkFig6HotVsRest with the
// suite-level fan-out pinned to one worker — the pre-parallelization
// orchestration path, kept as the speedup baseline.
func BenchmarkFig6HotVsRestSerial(b *testing.B) {
	s := benchSerialSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6HotVsRest(s, experiments.Fig6Config{Runs: benchRuns}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7OverheadSerial is BenchmarkFig7Overhead with one worker.
func BenchmarkFig7OverheadSerial(b *testing.B) {
	s := benchSerialSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Overhead(s, experiments.Fig7Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ResilienceSerial is BenchmarkFig9Resilience with one worker.
func BenchmarkFig9ResilienceSerial(b *testing.B) {
	s := benchSerialSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Resilience(s, experiments.Fig9Config{Runs: benchRuns}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteMemoContention measures the memoized Profile path under
// 8-way concurrent access (the fan-out's hottest shared structure).
func BenchmarkSuiteMemoContention(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Profile("P-BICG"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Profile("P-BICG"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLazyCompare measures lazy versus eager copy comparison
// for detection (Section IV-B1's latency-tolerance design point).
func BenchmarkAblationLazyCompare(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLazyCompare(s, "P-BICG")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio(), "eager/lazy")
	}
}

// BenchmarkAblationScheduler measures GTO versus LRR warp scheduling under
// correction.
func BenchmarkAblationScheduler(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationScheduler(s, "P-BICG")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio(), "lrr/gto")
	}
}

// BenchmarkAblationPlacement measures distinct-channel versus same-channel
// replica placement.
func BenchmarkAblationPlacement(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPlacement(s, "P-BICG")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio(), "same/distinct-channel")
	}
}

// BenchmarkAblationCompareBuffer sweeps the pending-compare buffer size.
func BenchmarkAblationCompareBuffer(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		cycles, err := experiments.AblationCompareBuffer(s, "P-BICG", []int{1, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cycles[1])/float64(cycles[32]), "1-entry/32-entry")
	}
}

// BenchmarkTimingSimulator measures raw timing-simulator throughput on the
// P-BICG baseline (cycles simulated per wall-second).
func BenchmarkTimingSimulator(b *testing.B) {
	s := benchSuite(b)
	app, err := s.App("P-BICG")
	if err != nil {
		b.Fatal(err)
	}
	traces, err := app.TraceRun(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := timing.New(arch.Default(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunApp("P-BICG", traces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalRun measures one functional (fault-injection-mode)
// execution of P-BICG.
func BenchmarkFunctionalRun(b *testing.B) {
	s := benchSuite(b)
	app, err := s.App("P-BICG")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.RunOn(app.Mem.Clone(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSingleConfig measures one 100-run detection campaign on
// P-BICG under the paper's densest fault model, on the fork + checkpoint
// fast path the experiments and the public API use.
func BenchmarkCampaignSingleConfig(b *testing.B) {
	s := benchSuite(b)
	cp, err := s.Checkpoint("P-BICG", core.Detection, 2)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := cp.MissSelector()
	if err != nil {
		b.Fatal(err)
	}
	model := fault.StuckAt{BitsPerWord: 4, Blocks: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cp.Campaign(fault.Campaign{Runs: 100, Seed: int64(i + 1)}, model, sel)
		if err != nil {
			b.Fatal(err)
		}
	}
}
