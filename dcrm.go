// Package dcrm is a data-centric reliability management library for GPU
// workloads, reproducing "Data-centric Reliability Management in GPUs"
// (DSN 2021). It identifies an application's hot data objects — small,
// read-only, highly accessed, shared across warps — and protects exactly
// those against multi-bit memory faults by partial replication:
// duplication with lazy comparison for detection, triplication with
// majority voting for detection-and-correction.
//
// The library bundles everything the paper's evaluation needs: a
// cycle-level GPU timing simulator (SMs, warp schedulers, coalescing L1s
// with MSHRs, a crossbar, banked L2, FR-FCFS GDDR5 controllers), the ten
// GPGPU applications of the study, a stuck-at multi-bit fault injector with
// campaign statistics, and per-application output-quality metrics.
//
// Basic use:
//
//	lib, err := dcrm.New()
//	w, err := lib.Workload("P-BICG")
//	report, err := w.Profile()                   // hot-object analysis
//	res, err := w.Campaign(dcrm.CampaignConfig{  // fault injection
//	    Scheme: dcrm.Detection,
//	    Faults: dcrm.FaultModel{Bits: 2, Blocks: 1},
//	    Runs:   1000,
//	})
//	perf, err := w.Performance(dcrm.Detection, w.HotObjectCount())
package dcrm

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/profile"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// Scheme selects a resilience scheme.
type Scheme int

// Supported schemes.
const (
	// Baseline runs without protection.
	Baseline Scheme = iota + 1
	// Detection duplicates hot data and compares copies lazily; a mismatch
	// terminates the run (ErrFaultDetected).
	Detection
	// Correction triplicates hot data and repairs faults by majority vote.
	Correction
)

// String renders the scheme.
func (s Scheme) String() string { return s.internal().String() }

func (s Scheme) internal() core.Scheme {
	switch s {
	case Detection:
		return core.Detection
	case Correction:
		return core.Correction
	default:
		return core.None
	}
}

// ErrFaultDetected is returned (wrapped) when the detection scheme
// terminates a run after a copy mismatch.
var ErrFaultDetected = core.ErrFaultDetected

// FaultModel is one multi-bit stuck-at fault configuration (Section II-C).
type FaultModel struct {
	// Bits stuck per targeted 32-bit word (the paper uses 2–4).
	Bits int
	// Blocks made faulty per run (the paper uses 1 and 5).
	Blocks int
}

func (m FaultModel) internal() fault.Model {
	return fault.StuckAt{BitsPerWord: m.Bits, Blocks: m.Blocks}
}

// Target selects which memory the fault injector aims at.
type Target int

// Injection targets.
const (
	// TargetWeighted injects across the whole address space with
	// probability proportional to per-block L1-missed accesses — the
	// paper's Fig. 8 methodology and the default.
	TargetWeighted Target = iota + 1
	// TargetHot injects only into hot data-object blocks.
	TargetHot
	// TargetRest injects only into accessed non-hot blocks.
	TargetRest
)

// Library is the entry point: it builds and caches the bundled workloads
// (constructing the C-NN classifier once). The underlying suite memoizes
// per-workload artifacts behind once-guarded entries, so a Library is safe
// for concurrent use.
type Library struct {
	suite *experiments.Suite
}

// Option configures New.
type Option func(*experiments.SuiteConfig)

// WithSeed fixes the seed for every deterministic component.
func WithSeed(seed int64) Option {
	return func(c *experiments.SuiteConfig) { c.Seed = seed }
}

// WithFastNN shrinks the C-NN training set; useful in tests.
func WithFastNN() Option {
	return func(c *experiments.SuiteConfig) { c.NNTrainSamples = 60 }
}

// WorkloadScale selects the bundled applications' input sizes.
type WorkloadScale = experiments.Scale

// Workload scales re-exported for WithScale.
const (
	// ScaleSmall (default) runs the full evaluation in minutes.
	ScaleSmall = experiments.ScaleSmall
	// ScaleMedium roughly quadruples the footprints.
	ScaleMedium = experiments.ScaleMedium
	// ScaleLarge approaches the paper's input sizes.
	ScaleLarge = experiments.ScaleLarge
)

// WithScale selects the workload input scale.
func WithScale(s WorkloadScale) Option {
	return func(c *experiments.SuiteConfig) { c.Scale = s }
}

// WithWorkers bounds the suite-level experiment fan-out (0, the default,
// means GOMAXPROCS). Results are identical at any worker count; only
// wall-clock time changes.
func WithWorkers(n int) Option {
	return func(c *experiments.SuiteConfig) { c.Workers = n }
}

// WithSimShards sets the timing simulator's event-scheduler shard count
// for every replay (0, the default, means GOMAXPROCS). Replay statistics
// are byte-identical at any shard count; only wall-clock time changes.
func WithSimShards(n int) Option {
	return func(c *experiments.SuiteConfig) { c.SimShards = n }
}

// New builds a library.
func New(opts ...Option) (*Library, error) {
	cfg := experiments.SuiteConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := experiments.NewSuite(cfg)
	if err != nil {
		return nil, err
	}
	return &Library{suite: s}, nil
}

// Applications lists the bundled workloads (the paper's ten applications).
func (l *Library) Applications() []string { return l.suite.AllNames() }

// EvaluatedApplications lists the eight applications of the paper's main
// evaluation.
func (l *Library) EvaluatedApplications() []string { return l.suite.EvaluatedNames() }

// Workload opens one application.
func (l *Library) Workload(name string) (*Workload, error) {
	app, err := l.suite.App(name)
	if err != nil {
		return nil, err
	}
	return &Workload{lib: l, name: name, hotCount: app.HotCount}, nil
}

// Workload is one GPGPU application ready for analysis, fault injection,
// and performance evaluation.
type Workload struct {
	lib      *Library
	name     string
	hotCount int
}

// Name returns the application label.
func (w *Workload) Name() string { return w.name }

// HotObjectCount returns the number of hot data objects (the protection
// level the paper's schemes use).
func (w *Workload) HotObjectCount() int { return w.hotCount }

// ObjectInfo describes one input data object.
type ObjectInfo struct {
	// Name is the source-level data object name.
	Name string
	// SizeBytes is its allocation size.
	SizeBytes int
	// Reads counts coalesced read transactions observed during profiling.
	Reads uint64
	// Hot marks the objects the paper's analysis would replicate.
	Hot bool
	// ReadOnly marks replication-eligible objects.
	ReadOnly bool
}

// ProfileReport summarises the offline access-pattern analysis
// (Section III-B / Table III).
type ProfileReport struct {
	// App is the application label.
	App string
	// Objects are the input data objects ranked by access concentration.
	Objects []ObjectInfo
	// HotSizePercent is the hot objects' share of total device memory.
	HotSizePercent float64
	// HotAccessPercent is the hot objects' share of all read accesses.
	HotAccessPercent float64
	// MaxMinRatio is the hottest/coldest block access ratio (Fig. 3).
	MaxMinRatio float64
	// HotPattern reports whether the profile shows the hot knee that makes
	// the application a candidate for data-centric protection.
	HotPattern bool
}

// Profile runs the offline access-pattern analysis.
func (w *Workload) Profile() (ProfileReport, error) {
	app, err := w.lib.suite.App(w.name)
	if err != nil {
		return ProfileReport{}, err
	}
	p, err := w.lib.suite.Profile(w.name)
	if err != nil {
		return ProfileReport{}, err
	}
	hot := make(map[string]bool, app.HotCount)
	for _, o := range app.HotObjects() {
		hot[o.Name] = true
	}
	rep := ProfileReport{
		App:              w.name,
		HotSizePercent:   p.HotSizePercent(app.HotObjects()),
		HotAccessPercent: p.HotAccessPercent(app.HotObjects()),
		MaxMinRatio:      p.MaxMinRatio(),
		HotPattern:       p.HasHotPattern(),
	}
	for _, o := range p.Objects {
		rep.Objects = append(rep.Objects, ObjectInfo{
			Name:      o.Name,
			SizeBytes: o.SizeBytes,
			Reads:     o.Reads,
			Hot:       hot[o.Name],
			ReadOnly:  o.ReadOnly,
		})
	}
	return rep, nil
}

// CampaignConfig configures a fault-injection campaign.
type CampaignConfig struct {
	// Scheme selects the protection evaluated (default Baseline).
	Scheme Scheme
	// Level is the cumulative number of protected objects (default: the
	// hot-object count when a scheme is enabled). Ignored when Objects is
	// set.
	Level int
	// Objects names the data objects to protect explicitly, e.g. the
	// result of AutoHotObjects. Overrides Level.
	Objects []string
	// Faults is the fault model (default 2 bits, 1 block).
	Faults FaultModel
	// Runs is the number of independent injections (default 1000).
	Runs int
	// Seed makes the campaign reproducible (default 1).
	Seed int64
	// Target selects the injection space (default TargetWeighted).
	Target Target
}

// CampaignResult reports campaign outcome counts.
type CampaignResult struct {
	// Runs executed.
	Runs int
	// SDC is the silent-data-corruption count — the paper's headline
	// reliability metric.
	SDC int
	// Detected counts detection-scheme terminations (DUEs).
	Detected int
	// Masked counts runs whose output stayed within the quality threshold
	// (including faults repaired by correction).
	Masked int
	// Crashed counts runs aborted by fault-induced failures.
	Crashed int
	// DUE counts detected-uncorrectable errors: the fault was caught by
	// ECC or duplication but could not be repaired, aborting the run.
	DUE int
	// ConfidencePct is the 95% confidence half-width of the SDC rate, in
	// percentage points.
	ConfidencePct float64
}

// Campaign runs a fault-injection campaign against the workload.
func (w *Workload) Campaign(cfg CampaignConfig) (CampaignResult, error) {
	if cfg.Runs == 0 {
		cfg.Runs = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Faults.Bits == 0 {
		cfg.Faults = FaultModel{Bits: 2, Blocks: 1}
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = Baseline
	}
	if cfg.Level == 0 && cfg.Scheme != Baseline {
		cfg.Level = w.hotCount
	}
	if cfg.Target == 0 {
		cfg.Target = TargetWeighted
	}
	if err := cfg.Faults.internal().Validate(); err != nil {
		return CampaignResult{}, err
	}

	suite := w.lib.suite
	var cp *experiments.Checkpoint
	var err error
	if len(cfg.Objects) > 0 {
		cp, err = suite.CheckpointForObjects(w.name, cfg.Scheme.internal(), cfg.Objects)
	} else {
		cp, err = suite.Checkpoint(w.name, cfg.Scheme.internal(), cfg.Level)
	}
	if err != nil {
		return CampaignResult{}, err
	}

	sel, err := w.selector(cp, cfg.Target)
	if err != nil {
		return CampaignResult{}, err
	}

	res, err := cp.Campaign(fault.Campaign{Runs: cfg.Runs, Seed: cfg.Seed}, cfg.Faults.internal(), sel)
	if err != nil {
		return CampaignResult{}, err
	}
	return CampaignResult{
		Runs:          res.Runs,
		SDC:           res.SDCRuns,
		Detected:      res.DetectedRuns,
		Masked:        res.MaskedRuns,
		Crashed:       res.CrashedRuns,
		DUE:           res.DUERuns,
		ConfidencePct: 100 * res.ConfidenceHalfWidth(),
	}, nil
}

// selector builds the fault selector for the configured target space.
func (w *Workload) selector(cp *experiments.Checkpoint, target Target) (fault.Selector, error) {
	app := cp.App
	switch target {
	case TargetWeighted:
		// Memoized on the checkpoint: the trace capture and timing run behind
		// the miss histogram happen once per (app, scheme, level).
		return cp.MissSelector()
	case TargetHot, TargetRest:
		p, err := w.lib.suite.Profile(w.name)
		if err != nil {
			return nil, err
		}
		hotNames := make(map[string]bool, app.HotCount)
		for _, o := range app.HotObjects() {
			hotNames[o.Name] = true
		}
		var blocks []arch.BlockAddr
		for _, b := range p.Blocks {
			inHot := hotNames[b.Object]
			if (target == TargetHot) == inHot {
				blocks = append(blocks, b.Block)
			}
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("dcrm: %s has no %v blocks", w.name, target)
		}
		return fault.NewSetSelector(blocks)
	default:
		return nil, fmt.Errorf("dcrm: unknown target %d", int(target))
	}
}

// AutoHotObjects identifies the workload's hot data objects from its
// access profile alone — the automated flow the paper sketches for unknown
// applications (Section IV-C, NVBit-style instrumentation) — returning
// their names in protection-priority order. For the bundled applications
// the result matches the source-analysis ground truth (a small superset
// for C-NN at scaled batch sizes). Feed the names to
// CampaignConfig.Objects or PerformanceObjects.
func (w *Workload) AutoHotObjects() ([]string, error) {
	app, err := w.lib.suite.App(w.name)
	if err != nil {
		return nil, err
	}
	p, err := w.lib.suite.Profile(w.name)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, o := range p.IdentifyHotObjects(app.Objects, profile.IdentifyConfig{}) {
		names = append(names, o.Name)
	}
	return names, nil
}

// PerformanceObjects is Performance for an explicit object set (e.g. the
// result of AutoHotObjects).
func (w *Workload) PerformanceObjects(scheme Scheme, objects []string) (PerfReport, error) {
	suite := w.lib.suite
	app, err := suite.App(w.name)
	if err != nil {
		return PerfReport{}, err
	}
	traces, err := app.TraceRun(nil)
	if err != nil {
		return PerfReport{}, err
	}
	run := func(plan timing.ProtectionPlan) (timing.AppStats, error) {
		eng, err := timing.New(arch.Default(), plan)
		if err != nil {
			return timing.AppStats{}, err
		}
		eng.Shards = suite.SimShards()
		return eng.RunApp(w.name, traces)
	}
	base, err := run(nil)
	if err != nil {
		return PerfReport{}, err
	}
	rep := PerfReport{
		Cycles:           base.TotalCycles(),
		L1MissedAccesses: base.TotalL1Misses(),
		BaselineCycles:   base.TotalCycles(),
		NormalizedTime:   1,
	}
	if scheme == Baseline || len(objects) == 0 {
		return rep, nil
	}
	_, plan, err := suite.PlanForObjects(w.name, scheme.internal(), objects)
	if err != nil {
		return PerfReport{}, err
	}
	if plan == nil {
		return rep, nil
	}
	st, err := run(plan)
	if err != nil {
		return PerfReport{}, err
	}
	rep.Cycles = st.TotalCycles()
	rep.L1MissedAccesses = st.TotalL1Misses()
	rep.NormalizedTime = float64(st.TotalCycles()) / float64(base.TotalCycles())
	rep.ReplicaBytes = plan.Cost().ReplicaBytes
	return rep, nil
}

// PerfReport is one timing-simulator measurement.
type PerfReport struct {
	// Cycles is the application's execution time in core cycles.
	Cycles int64
	// L1MissedAccesses counts L1 read misses (including replica traffic).
	L1MissedAccesses uint64
	// BaselineCycles and NormalizedTime relate the run to the unprotected
	// baseline.
	BaselineCycles int64
	NormalizedTime float64
	// ReplicaBytes is the DRAM consumed by replica copies.
	ReplicaBytes int
}

// Performance measures the scheme's overhead on the cycle-level timing
// simulator, normalized against the unprotected baseline.
func (w *Workload) Performance(scheme Scheme, level int) (PerfReport, error) {
	suite := w.lib.suite
	app, err := suite.App(w.name)
	if err != nil {
		return PerfReport{}, err
	}
	traces, err := app.TraceRun(nil)
	if err != nil {
		return PerfReport{}, err
	}
	run := func(plan timing.ProtectionPlan) (timing.AppStats, error) {
		eng, err := timing.New(arch.Default(), plan)
		if err != nil {
			return timing.AppStats{}, err
		}
		eng.Shards = suite.SimShards()
		return eng.RunApp(w.name, traces)
	}
	base, err := run(nil)
	if err != nil {
		return PerfReport{}, err
	}
	rep := PerfReport{
		Cycles:           base.TotalCycles(),
		L1MissedAccesses: base.TotalL1Misses(),
		BaselineCycles:   base.TotalCycles(),
		NormalizedTime:   1,
	}
	if scheme == Baseline || level <= 0 {
		return rep, nil
	}
	_, plan, err := suite.PlanFor(w.name, scheme.internal(), level)
	if err != nil {
		return PerfReport{}, err
	}
	if plan == nil {
		return rep, nil
	}
	st, err := run(plan)
	if err != nil {
		return PerfReport{}, err
	}
	rep.Cycles = st.TotalCycles()
	rep.L1MissedAccesses = st.TotalL1Misses()
	rep.NormalizedTime = float64(st.TotalCycles()) / float64(base.TotalCycles())
	rep.ReplicaBytes = plan.Cost().ReplicaBytes
	return rep, nil
}
